// Wire protocol for the sharded multi-process SolverService (DESIGN.md §8).
//
// The coordinator and its worker processes speak length-prefixed binary
// frames over a Unix-domain stream socket (serialize::write_frame /
// read_frame supply the framing; this header defines what is inside a
// frame).  Every payload is a serialize::Writer byte stream — the same
// encoding the snapshot format uses, so the wire shares the snapshot's
// definition of truth for scalars, varints, and POD spans — beginning with
// a one-byte message type and a varint request id:
//
//   [u32 frame length] [u8 type] [varint req_id] [type-specific fields]
//
// req_id correlates a response with its request (responses may arrive out
// of order: the worker answers solves as its in-process dispatcher
// completes them); one-way messages carry req_id 0.  The first frame on a
// fresh connection is always the worker's kHello carrying the snapshot
// magic, the endianness mark, and kWireVersion — the same refuse-up-front
// versioning discipline as the snapshot header, so a coordinator never
// decodes frames from a mismatched worker build.
//
// Error mapping: a Status travels as [u8 code] [string message]; worker
// failures (bad snapshot path, stale worker handle, shed load) arrive as
// the same typed Status values the in-process service returns, so clients
// of the Coordinator observe the error contract of solver_service.h
// unchanged.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/multivec.h"
#include "service/solver_service.h"
#include "util/serialize.h"
#include "util/status.h"

namespace parsdd::dist {

/// Bumped whenever any frame layout changes; kHello carries it and each
/// side refuses a peer speaking a different version.
/// v2: kSubmit/kSubmitBatch carry a required-precision byte (0 = any,
/// 1 = f64-bitwise, 2 = f32-refined) after the worker handle, and
/// kRegisterAck carries the setup's Precision.
/// v3: dynamic updates — kUpdate/kUpdateAck forward edge-delta batches to
/// the owning shard, kRegisterAck carries update_seq + stale_components,
/// and kStatsAck carries the update/rebuild counters and gauge.
inline constexpr std::uint16_t kWireVersion = 3;

enum class MsgType : std::uint8_t {
  kHello = 1,             // worker -> coordinator, first frame on connect
  kRegisterSnapshot = 2,  // coordinator -> worker: load + register this path
  kRegisterAck = 3,       // worker -> coordinator: status, handle, shape
  kUnregister = 4,        // coordinator -> worker, one-way
  kSubmit = 5,            // coordinator -> worker: one right-hand side
  kSubmitAck = 6,         // worker -> coordinator: status, x, stats
  kSubmitBatch = 7,       // coordinator -> worker: a k-column block
  kSubmitBatchAck = 8,    // worker -> coordinator: status, X, per-col stats
  kStats = 9,             // coordinator -> worker: sample ServiceStats
  kStatsAck = 10,         // worker -> coordinator: counters + live gauges
  kShutdown = 11,         // coordinator -> worker, one-way: drain and exit
  kUpdate = 12,           // coordinator -> worker: edge-delta batch
  kUpdateAck = 13,        // worker -> coordinator: status + UpdateAck
};

struct FrameHeader {
  MsgType type = MsgType::kHello;
  std::uint64_t req_id = 0;
};

void write_frame_header(serialize::Writer& w, MsgType type,
                        std::uint64_t req_id);
/// Reader-sticky: on a malformed header the Reader's status is non-OK and
/// the returned header is meaningless.
FrameHeader read_frame_header(serialize::Reader& r);

void write_string(serialize::Writer& w, const std::string& s);
std::string read_string(serialize::Reader& r);

void write_status(serialize::Writer& w, const Status& s);
Status read_status(serialize::Reader& r);

void write_vec(serialize::Writer& w, const Vec& v);
Vec read_vec(serialize::Reader& r);

void write_multivec(serialize::Writer& w, const MultiVec& m);
MultiVec read_multivec(serialize::Reader& r);

void write_iter_stats(serialize::Writer& w, const IterStats& s);
IterStats read_iter_stats(serialize::Reader& r);

void write_service_stats(serialize::Writer& w, const ServiceStats& s);
ServiceStats read_service_stats(serialize::Reader& r);

/// The worker's opening frame: snapshot magic + endianness mark +
/// kWireVersion (header discipline of serialize.h applied to the socket).
void write_hello(serialize::Writer& w);
/// Validates a kHello payload (header already consumed); each failure mode
/// is a distinct InvalidArgument message.
Status check_hello(serialize::Reader& r);

/// Registration acknowledgement: on OK status the worker-local handle id
/// plus the setup shape (the coordinator serves info() locally from it).
struct RegisterAck {
  Status status = OkStatus();
  std::uint64_t worker_handle = 0;
  SetupInfo info;
};
void write_register_ack(serialize::Writer& w, const RegisterAck& a);
RegisterAck read_register_ack(serialize::Reader& r);

/// kUpdate payload body (after the worker handle): an edge-delta batch.
void write_edge_deltas(serialize::Writer& w,
                       const std::vector<EdgeDelta>& deltas);
/// Frame-bounded: a forged count larger than the remaining bytes fails the
/// Reader instead of allocating.
std::vector<EdgeDelta> read_edge_deltas(serialize::Reader& r);

/// kUpdateAck: typed status plus the service's UpdateAck fields.
struct WireUpdateAck {
  Status status = OkStatus();
  UpdateAck ack;
};
void write_update_ack(serialize::Writer& w, const WireUpdateAck& a);
WireUpdateAck read_update_ack(serialize::Reader& r);

}  // namespace parsdd::dist
