#include "dist/wire.h"

#include <utility>

namespace parsdd::dist {

void write_frame_header(serialize::Writer& w, MsgType type,
                        std::uint64_t req_id) {
  w.u8(static_cast<std::uint8_t>(type));
  w.varint(req_id);
}

FrameHeader read_frame_header(serialize::Reader& r) {
  FrameHeader h;
  std::uint8_t type = r.u8();
  h.req_id = r.varint();
  if (!r.status().ok()) return h;
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kUpdateAck)) {
    r.fail("unknown wire message type " + std::to_string(type));
    return h;
  }
  h.type = static_cast<MsgType>(type);
  return h;
}

void write_string(serialize::Writer& w, const std::string& s) {
  w.varint(s.size());
  w.bytes(s.data(), s.size());
}

std::string read_string(serialize::Reader& r) {
  std::uint64_t len = r.varint();
  if (!r.status().ok()) return std::string();
  if (len > r.remaining()) {
    r.fail("string length " + std::to_string(len) + " exceeds frame");
    return std::string();
  }
  std::vector<char> buf(static_cast<std::size_t>(len));
  for (char& c : buf) c = static_cast<char>(r.u8());
  return std::string(buf.begin(), buf.end());
}

void write_status(serialize::Writer& w, const Status& s) {
  w.u8(static_cast<std::uint8_t>(s.code()));
  write_string(w, s.message());
}

Status read_status(serialize::Reader& r) {
  std::uint8_t code = r.u8();
  std::string message = read_string(r);
  if (!r.status().ok()) return r.status();
  if (code > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    r.fail("unknown status code " + std::to_string(code));
    return r.status();
  }
  if (code == 0) return OkStatus();
  return Status(static_cast<StatusCode>(code), std::move(message));
}

void write_vec(serialize::Writer& w, const Vec& v) { w.pod_vec(v); }

Vec read_vec(serialize::Reader& r) { return r.pod_vec<double>(); }

void write_multivec(serialize::Writer& w, const MultiVec& m) {
  w.varint(m.rows());
  w.varint(m.cols());
  w.pod_vec(m.data());
}

MultiVec read_multivec(serialize::Reader& r) {
  std::uint64_t rows = r.varint();
  std::uint64_t cols = r.varint();
  std::vector<double> data = r.pod_vec<double>();
  MultiVec out;
  if (!r.status().ok()) return out;
  // Division-based check so a forged rows x cols cannot overflow past the
  // (frame-bounded) entry count.
  bool shape_ok = (rows == 0 || cols == 0)
                      ? data.empty()
                      : (rows == data.size() / cols &&
                         data.size() % cols == 0);
  if (!shape_ok) {
    r.fail("multivec shape " + std::to_string(rows) + "x" +
           std::to_string(cols) + " does not match " +
           std::to_string(data.size()) + " entries");
    return out;
  }
  out.assign(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols),
             0.0);
  out.data() = std::move(data);
  return out;
}

void write_iter_stats(serialize::Writer& w, const IterStats& s) {
  w.u32(s.iterations);
  w.f64(s.relative_residual);
  w.boolean(s.converged);
}

IterStats read_iter_stats(serialize::Reader& r) {
  IterStats s;
  s.iterations = r.u32();
  s.relative_residual = r.f64();
  s.converged = r.boolean();
  return s;
}

void write_service_stats(serialize::Writer& w, const ServiceStats& s) {
  w.u64(s.submitted);
  w.u64(s.rejected);
  w.u64(s.completed);
  w.u64(s.dispatched_blocks);
  w.u64(s.dispatched_cols);
  w.u64(s.setup_cache_hits);
  w.u64(s.setup_cache_misses);
  w.u64(s.updates_applied);
  w.u64(s.updates_deferred);
  w.u64(s.rebuilds_completed);
  w.u64(s.quality_rebuilds);
  w.u64(s.rebuild_failures);
  w.u64(s.last_rebuild_ms);
  w.u64(s.queue_depth);
  w.u64(s.in_flight_cols);
  w.u64(s.in_flight_blocks);
  w.u64(s.rebuilds_in_flight);
  w.varint(s.per_handle_pending.size());
  for (const auto& [handle, pending] : s.per_handle_pending) {
    w.varint(handle);
    w.varint(pending);
  }
}

ServiceStats read_service_stats(serialize::Reader& r) {
  ServiceStats s;
  s.submitted = r.u64();
  s.rejected = r.u64();
  s.completed = r.u64();
  s.dispatched_blocks = r.u64();
  s.dispatched_cols = r.u64();
  s.setup_cache_hits = r.u64();
  s.setup_cache_misses = r.u64();
  s.updates_applied = r.u64();
  s.updates_deferred = r.u64();
  s.rebuilds_completed = r.u64();
  s.quality_rebuilds = r.u64();
  s.rebuild_failures = r.u64();
  s.last_rebuild_ms = r.u64();
  s.queue_depth = r.u64();
  s.in_flight_cols = r.u64();
  s.in_flight_blocks = r.u64();
  s.rebuilds_in_flight = r.u64();
  std::uint64_t entries = r.varint();
  if (!r.status().ok()) return s;
  // Two varints (>= 2 bytes) per entry bound the claimed count.
  if (entries > r.remaining() / 2) {
    r.fail("per-handle gauge count " + std::to_string(entries) +
           " exceeds frame");
    return s;
  }
  s.per_handle_pending.reserve(static_cast<std::size_t>(entries));
  for (std::uint64_t i = 0; i < entries; ++i) {
    std::uint64_t handle = r.varint();
    std::uint64_t pending = r.varint();
    s.per_handle_pending.emplace_back(handle, pending);
  }
  return s;
}

void write_hello(serialize::Writer& w) {
  write_frame_header(w, MsgType::kHello, 0);
  w.u32(serialize::kMagic);
  w.u16(serialize::kEndianMark);
  w.u16(kWireVersion);
}

Status check_hello(serialize::Reader& r) {
  std::uint32_t magic = r.u32();
  std::uint16_t endian = r.u16();
  std::uint16_t version = r.u16();
  PARSDD_RETURN_IF_ERROR(r.status());
  if (magic != serialize::kMagic) {
    return InvalidArgumentError("dist: peer is not a parsdd worker (bad "
                                "magic)");
  }
  if (endian != serialize::kEndianMark) {
    return InvalidArgumentError("dist: peer runs on a foreign byte order");
  }
  if (version != kWireVersion) {
    return InvalidArgumentError(
        "dist: peer speaks wire version " + std::to_string(version) +
        ", this build speaks " + std::to_string(kWireVersion));
  }
  return OkStatus();
}

void write_register_ack(serialize::Writer& w, const RegisterAck& a) {
  write_status(w, a.status);
  w.u64(a.worker_handle);
  w.u32(a.info.dimension);
  w.u32(a.info.components);
  w.u32(a.info.chain_levels);
  w.u64(a.info.chain_edges);
  w.u8(static_cast<std::uint8_t>(a.info.precision));
  w.u64(a.info.update_seq);
  w.u32(a.info.stale_components);
}

RegisterAck read_register_ack(serialize::Reader& r) {
  RegisterAck a;
  a.status = read_status(r);
  a.worker_handle = r.u64();
  a.info.dimension = r.u32();
  a.info.components = r.u32();
  a.info.chain_levels = r.u32();
  a.info.chain_edges = static_cast<std::size_t>(r.u64());
  std::uint8_t prec = r.u8();
  if (prec > static_cast<std::uint8_t>(Precision::kF32Refined)) {
    r.fail("register ack: unknown Precision value " + std::to_string(prec));
    return a;
  }
  a.info.precision = static_cast<Precision>(prec);
  a.info.update_seq = r.u64();
  a.info.stale_components = r.u32();
  return a;
}

void write_edge_deltas(serialize::Writer& w,
                       const std::vector<EdgeDelta>& deltas) {
  w.varint(deltas.size());
  for (const EdgeDelta& d : deltas) {
    w.u32(d.u);
    w.u32(d.v);
    w.f64(d.w);
  }
}

std::vector<EdgeDelta> read_edge_deltas(serialize::Reader& r) {
  std::vector<EdgeDelta> out;
  std::uint64_t count = r.varint();
  if (!r.status().ok()) return out;
  // 16 bytes (two u32 + one f64) per delta bound the claimed count.
  if (count > r.remaining() / 16) {
    r.fail("edge-delta count " + std::to_string(count) + " exceeds frame");
    return out;
  }
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    EdgeDelta d;
    d.u = r.u32();
    d.v = r.u32();
    d.w = r.f64();
    out.push_back(d);
  }
  return out;
}

void write_update_ack(serialize::Writer& w, const WireUpdateAck& a) {
  write_status(w, a.status);
  w.u8(static_cast<std::uint8_t>(a.ack.tier));
  w.boolean(a.ack.deferred);
  w.boolean(a.ack.rebuild_scheduled);
  w.u64(a.ack.update_seq);
}

WireUpdateAck read_update_ack(serialize::Reader& r) {
  WireUpdateAck a;
  a.status = read_status(r);
  std::uint8_t tier = r.u8();
  if (r.status().ok() &&
      tier > static_cast<std::uint8_t>(UpdateTier::kFullRebuild)) {
    r.fail("update ack: unknown UpdateTier value " + std::to_string(tier));
    return a;
  }
  a.ack.tier = static_cast<UpdateTier>(tier);
  a.ack.deferred = r.boolean();
  a.ack.rebuild_scheduled = r.boolean();
  a.ack.update_seq = r.u64();
  return a;
}

}  // namespace parsdd::dist
