#include "dist/coordinator.h"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "dist/process_supervisor.h"
#include "dist/wire.h"
#include "util/serialize.h"
#include "util/thread_annotations.h"

namespace parsdd::dist {

namespace {

// Wire encoding of submit's optional required precision (wire.h, v2):
// 0 = any, 1 = f64-bitwise, 2 = f32-refined.
std::uint8_t encode_required_precision(std::optional<Precision> require) {
  if (!require) return 0;
  return *require == Precision::kF32Refined ? 2 : 1;
}

using SinglePromise = std::promise<StatusOr<SolveResult>>;
using BatchPromise = std::promise<StatusOr<BatchSolveResult>>;
using RegisterPromise = std::promise<RegisterAck>;
using StatsPromise = std::promise<StatusOr<ServiceStats>>;
using UpdatePromise = std::promise<WireUpdateAck>;

// One caller waiting on a req_id; which alternative is live tells the
// receiver how to decode the matching ack.
using PendingCall = std::variant<SinglePromise, BatchPromise, RegisterPromise,
                                 StatsPromise, UpdatePromise>;

void fail_call(PendingCall& call, const Status& status) {
  struct Visitor {
    const Status& s;
    void operator()(SinglePromise& p) {
      p.set_value(StatusOr<SolveResult>(s));
    }
    void operator()(BatchPromise& p) {
      p.set_value(StatusOr<BatchSolveResult>(s));
    }
    void operator()(RegisterPromise& p) {
      RegisterAck a;
      a.status = s;
      p.set_value(std::move(a));
    }
    void operator()(StatsPromise& p) {
      p.set_value(StatusOr<ServiceStats>(s));
    }
    void operator()(UpdatePromise& p) {
      WireUpdateAck a;
      a.status = s;
      p.set_value(std::move(a));
    }
  };
  std::visit(Visitor{status}, call);
}

// Shard key: the snapshot's trailer checksum (the last 8 bytes
// Writer::to_file appended) — a content digest of the complete setup, read
// without decoding the payload.  Existence and full validation stay the
// worker's job; only the digest is needed for placement.
StatusOr<std::uint64_t> snapshot_digest(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("dist: cannot open snapshot " + path);
  }
  std::uint64_t digest = 0;
  bool ok = std::fseek(f, -static_cast<long>(sizeof(digest)), SEEK_END) == 0 &&
            std::fread(&digest, sizeof(digest), 1, f) == 1;
  std::fclose(f);
  if (!ok) {
    return InvalidArgumentError("dist: snapshot " + path +
                                " is shorter than its checksum trailer");
  }
  return digest;
}

std::string hex64(std::uint64_t v) {
  char buf[16];
  const char* digits = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = digits[v & 0xf];
    v >>= 4;
  }
  return std::string(buf, sizeof(buf));
}

}  // namespace

struct Coordinator::Impl {
  struct Shard;

  CoordinatorOptions opts;  // resolved (worker_binary filled); then const

  mutable Mutex mu;
  CondVar cv_idle;  // signalled whenever total_pending drops

  struct HandleInfo {
    std::uint32_t shard = 0;
    std::uint64_t worker_handle = 0;
    std::string snapshot_path;
    SetupInfo info;
    std::uint64_t digest = 0;
    /// Every delta batch the handle absorbed, in acknowledgement order.
    /// The snapshot on disk is the PRE-update setup, so whenever the setup
    /// must be reconstructed from it (respawn replay, rebalance) this log
    /// is replayed on top — the recovered shard serves the updated graph.
    std::vector<EdgeDelta> update_log;
    /// The snapshot could not be re-registered (or its update log could
    /// not be replayed) during recovery; submits fail Unavailable with
    /// lost_why until the handle is unregistered.
    bool lost = false;
    std::string lost_why;
  };

  bool stopping PARSDD_GUARDED_BY(mu) = false;
  std::map<std::uint64_t, HandleInfo> handles PARSDD_GUARDED_BY(mu);
  // Digest -> coordinator handle; rejects fingerprint collisions and is
  // reserved before the registration round-trip so two concurrent
  // registrations of one snapshot cannot both succeed.
  std::map<std::uint64_t, std::uint64_t> by_digest PARSDD_GUARDED_BY(mu);
  std::uint64_t next_handle PARSDD_GUARDED_BY(mu) = 1;
  std::uint64_t next_req PARSDD_GUARDED_BY(mu) = 1;
  std::uint64_t build_seq PARSDD_GUARDED_BY(mu) = 0;
  std::size_t total_pending PARSDD_GUARDED_BY(mu) = 0;

  std::uint64_t submitted PARSDD_GUARDED_BY(mu) = 0;
  std::uint64_t rejected PARSDD_GUARDED_BY(mu) = 0;
  std::uint64_t completed PARSDD_GUARDED_BY(mu) = 0;
  std::uint64_t worker_deaths PARSDD_GUARDED_BY(mu) = 0;
  std::uint64_t respawns PARSDD_GUARDED_BY(mu) = 0;
  double last_recovery_ms PARSDD_GUARDED_BY(mu) = 0.0;

  // One worker process and its bookkeeping.  pending/state/deaths are
  // guarded by mu (annotations cannot name an outer object's mutex from a
  // nested type, so the discipline is by construction here and checked by
  // the TSan lane).  proc is written by Start (before the receiver exists)
  // and by the receiver thread — always under mu when another thread could
  // read it (kill_worker, submit sends), and read lock-free only by the
  // receiver itself.
  struct Shard {
    std::uint32_t index = 0;
    WorkerProcess proc;
    enum class State { kUp, kDown, kStopped };
    State state = State::kStopped;
    std::map<std::uint64_t, PendingCall> pending;  // req_id -> caller
    std::uint64_t deaths = 0;
    std::thread receiver;
  };
  // Fixed after Start(); the vector itself is never resized concurrently.
  std::vector<std::unique_ptr<Shard>> shards;

  std::vector<std::string> worker_args() const {
    return {"--threads", std::to_string(opts.worker_threads),
            "--max-batch", std::to_string(opts.worker_max_batch),
            "--linger-us", std::to_string(opts.worker_linger_us),
            "--max-pending", std::to_string(opts.worker_max_pending)};
  }

  /// Spawns a worker and consumes its kHello; the returned process is
  /// handshake-complete and has sent nothing else yet.
  StatusOr<WorkerProcess> spawn_checked() {
    StatusOr<WorkerProcess> w = spawn_worker(opts.worker_binary,
                                             worker_args());
    if (!w.ok()) return w.status();
    StatusOr<std::vector<std::uint8_t>> frame = serialize::read_frame(w->fd);
    if (!frame.ok()) {
      destroy_worker(*w);
      return InternalError("dist: worker sent no hello — is '" +
                           opts.worker_binary + "' the parsdd_worker binary?");
    }
    serialize::Reader r(std::move(*frame));
    FrameHeader h = read_frame_header(r);
    if (!r.status().ok() || h.type != MsgType::kHello) {
      destroy_worker(*w);
      return InvalidArgumentError(
          "dist: worker's first frame is not a hello");
    }
    Status hello = check_hello(r);
    if (!hello.ok()) {
      destroy_worker(*w);
      return hello;
    }
    return w;
  }

  /// Submit-path validation shared by single and batch; on OK fills the
  /// routed shard and the worker-local handle id.
  Status route(std::uint64_t handle_id, std::size_t rows, Shard** shard,
               std::uint64_t* worker_handle) PARSDD_REQUIRES(mu) {
    if (stopping) {
      return UnavailableError("dist: coordinator is shutting down");
    }
    auto it = handles.find(handle_id);
    if (it == handles.end()) {
      return NotFoundError("dist: unknown handle " +
                           std::to_string(handle_id));
    }
    const HandleInfo& hi = it->second;
    if (hi.lost) {
      return UnavailableError("dist: setup for handle " +
                              std::to_string(handle_id) +
                              " was lost in recovery: " + hi.lost_why);
    }
    if (rows != hi.info.dimension) {
      return InvalidArgumentError(
          "dist: right-hand side has " + std::to_string(rows) +
          " rows, setup dimension is " + std::to_string(hi.info.dimension));
    }
    if (total_pending >= opts.max_pending) {
      ++rejected;
      return ResourceExhaustedError(
          "dist: " + std::to_string(total_pending) +
          " requests pending (max_pending = " +
          std::to_string(opts.max_pending) + ")");
    }
    Shard& s = *shards[hi.shard];
    if (s.state != Shard::State::kUp) {
      return UnavailableError("dist: worker " + std::to_string(hi.shard) +
                              " is down; retry");
    }
    *shard = &s;
    *worker_handle = hi.worker_handle;
    return OkStatus();
  }

  /// The registration round-trip shared by register_from_snapshot,
  /// register_laplacian/register_sdd (after they save), and recovery's
  /// replay (which bypasses this for its private channel).
  StatusOr<SetupHandle> register_snapshot_path(const std::string& path)
      PARSDD_EXCLUDES(mu) {
    StatusOr<std::uint64_t> digest = snapshot_digest(path);
    if (!digest.ok()) return digest.status();
    RegisterPromise p;
    std::future<RegisterAck> fut = p.get_future();
    std::uint64_t handle_id = 0;
    std::uint32_t shard_idx = 0;
    {
      MutexLock lock(mu);
      if (stopping) {
        return UnavailableError("dist: coordinator is shutting down");
      }
      auto hit = by_digest.find(*digest);
      if (hit != by_digest.end()) {
        return InvalidArgumentError(
            "dist: fingerprint collision: snapshot " + path +
            " is already registered as handle " +
            std::to_string(hit->second) + "; unregister it first");
      }
      shard_idx = static_cast<std::uint32_t>(*digest % shards.size());
      Shard& s = *shards[shard_idx];
      if (s.state != Shard::State::kUp) {
        return UnavailableError("dist: worker " + std::to_string(shard_idx) +
                                " is down; retry registration");
      }
      handle_id = next_handle++;
      by_digest.emplace(*digest, handle_id);
      std::uint64_t req = next_req++;
      serialize::Writer w;
      write_frame_header(w, MsgType::kRegisterSnapshot, req);
      write_string(w, path);
      Status sent = serialize::write_frame(s.proc.fd, w);
      if (!sent.ok()) {
        by_digest.erase(*digest);
        return UnavailableError("dist: worker " + std::to_string(shard_idx) +
                                " hung up: " + sent.message());
      }
      s.pending.emplace(req, std::move(p));
      ++total_pending;
      ++submitted;
    }
    RegisterAck ack = fut.get();
    MutexLock lock(mu);
    if (!ack.status.ok()) {
      by_digest.erase(*digest);
      return ack.status;
    }
    HandleInfo hi;
    hi.shard = shard_idx;
    hi.worker_handle = ack.worker_handle;
    hi.snapshot_path = path;
    hi.info = ack.info;
    hi.digest = *digest;
    handles.emplace(handle_id, std::move(hi));
    return SetupHandle{handle_id};
  }

  /// Persists a locally built setup into snapshot_dir under its
  /// digest-derived canonical name, then registers the file.
  StatusOr<SetupHandle> save_and_register(const SolverSetup& setup)
      PARSDD_EXCLUDES(mu) {
    std::uint64_t seq;
    {
      MutexLock lock(mu);
      seq = build_seq++;
    }
    // Save under a sequence name first: the canonical name needs the
    // digest, which exists only once the file does.  The rename is atomic
    // within the directory (and Save itself is tmp+rename underneath).
    std::string tmp =
        opts.snapshot_dir + "/setup_build_" + std::to_string(seq) + ".snap";
    PARSDD_RETURN_IF_ERROR(setup.Save(tmp));
    StatusOr<std::uint64_t> digest = snapshot_digest(tmp);
    if (!digest.ok()) return digest.status();
    std::string path =
        opts.snapshot_dir + "/setup_" + hex64(*digest) + ".snap";
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return InternalError("dist: cannot move snapshot into place at " +
                           path);
    }
    return register_snapshot_path(path);
  }

  void receiver_loop(Shard& s) PARSDD_EXCLUDES(mu) {
    for (;;) {
      StatusOr<std::vector<std::uint8_t>> frame =
          serialize::read_frame(s.proc.fd);
      if (!frame.ok()) {
        if (!handle_worker_down(s)) return;
        continue;
      }
      serialize::Reader r(std::move(*frame));
      FrameHeader h = read_frame_header(r);
      if (!r.status().ok()) {
        // A frame that does not even parse a header means the stream is
        // desynchronized; the connection is unrecoverable, the process may
        // be fine — tear both down and take the normal recovery path.
        if (!handle_worker_down(s)) return;
        continue;
      }
      dispatch_response(s, h, r);
    }
  }

  void dispatch_response(Shard& s, const FrameHeader& h, serialize::Reader& r)
      PARSDD_EXCLUDES(mu) {
    PendingCall call;
    {
      MutexLock lock(mu);
      auto it = s.pending.find(h.req_id);
      // No caller: a late answer whose request was already failed by a
      // previous death of this shard, or worker noise.  Drop it.
      if (it == s.pending.end()) return;
      call = std::move(it->second);
      s.pending.erase(it);
      --total_pending;
      ++completed;
      cv_idle.notify_all();
    }
    // Decode and resolve outside the lock: promise waiters may run
    // arbitrary continuations.
    switch (h.type) {
      case MsgType::kSubmitAck: {
        auto* p = std::get_if<SinglePromise>(&call);
        if (p == nullptr) return;
        Status st = read_status(r);
        if (!st.ok()) {
          p->set_value(StatusOr<SolveResult>(std::move(st)));
          return;
        }
        SolveResult res;
        res.x = read_vec(r);
        res.stats = read_iter_stats(r);
        res.coalesced_cols = r.u32();
        if (!r.status().ok()) {
          p->set_value(StatusOr<SolveResult>(InternalError(
              "dist: malformed solve ack: " + r.status().message())));
          return;
        }
        p->set_value(StatusOr<SolveResult>(std::move(res)));
        return;
      }
      case MsgType::kSubmitBatchAck: {
        auto* p = std::get_if<BatchPromise>(&call);
        if (p == nullptr) return;
        Status st = read_status(r);
        if (!st.ok()) {
          p->set_value(StatusOr<BatchSolveResult>(std::move(st)));
          return;
        }
        BatchSolveResult res;
        res.x = read_multivec(r);
        std::uint64_t cols = r.varint();
        if (r.status().ok() && cols <= r.remaining() / sizeof(std::uint32_t)) {
          res.report.column_stats.reserve(static_cast<std::size_t>(cols));
          for (std::uint64_t c = 0; c < cols; ++c) {
            res.report.column_stats.push_back(read_iter_stats(r));
          }
        } else if (r.status().ok()) {
          r.fail("per-column stats count exceeds frame");
        }
        if (!r.status().ok()) {
          p->set_value(StatusOr<BatchSolveResult>(InternalError(
              "dist: malformed batch ack: " + r.status().message())));
          return;
        }
        p->set_value(StatusOr<BatchSolveResult>(std::move(res)));
        return;
      }
      case MsgType::kRegisterAck: {
        auto* p = std::get_if<RegisterPromise>(&call);
        if (p == nullptr) return;
        RegisterAck ack = read_register_ack(r);
        if (!r.status().ok()) {
          ack = RegisterAck{};
          ack.status = InternalError("dist: malformed register ack: " +
                                     r.status().message());
        }
        p->set_value(std::move(ack));
        return;
      }
      case MsgType::kStatsAck: {
        auto* p = std::get_if<StatsPromise>(&call);
        if (p == nullptr) return;
        ServiceStats stats = read_service_stats(r);
        if (!r.status().ok()) {
          p->set_value(StatusOr<ServiceStats>(InternalError(
              "dist: malformed stats ack: " + r.status().message())));
          return;
        }
        p->set_value(StatusOr<ServiceStats>(std::move(stats)));
        return;
      }
      case MsgType::kUpdateAck: {
        auto* p = std::get_if<UpdatePromise>(&call);
        if (p == nullptr) return;
        WireUpdateAck ack = read_update_ack(r);
        if (!r.status().ok()) {
          ack = WireUpdateAck{};
          ack.status = InternalError("dist: malformed update ack: " +
                                     r.status().message());
        }
        p->set_value(std::move(ack));
        return;
      }
      default:
        return;  // coordinator-bound types only; anything else is noise
    }
  }

  /// The recovery state machine (DESIGN.md §8): kUp --death--> kDown
  /// --respawn+replay--> kUp, or --stopping/respawn-off/failure-->
  /// kStopped.  Returns false when the receiver thread should exit.
  bool handle_worker_down(Shard& s) PARSDD_EXCLUDES(mu) {
    std::vector<PendingCall> orphans;
    WorkerProcess corpse;
    bool stop;
    {
      MutexLock lock(mu);
      s.state = Shard::State::kDown;
      ++s.deaths;
      ++worker_deaths;
      // Every in-flight request on this shard fails loudly: accepted work
      // is never silently dropped.
      orphans.reserve(s.pending.size());
      for (auto& [req, call] : s.pending) orphans.push_back(std::move(call));
      completed += s.pending.size();
      total_pending -= s.pending.size();
      s.pending.clear();
      // Detach the dead process so no other thread can see its fd/pid
      // again; reaped below without the lock (waitpid can block).
      corpse = s.proc;
      s.proc = WorkerProcess{};
      stop = stopping || !opts.respawn;
      if (stop) s.state = Shard::State::kStopped;
      cv_idle.notify_all();
    }
    Status death = UnavailableError("dist: worker " + std::to_string(s.index) +
                                    " died with the request in flight");
    for (PendingCall& call : orphans) fail_call(call, death);
    destroy_worker(corpse);
    if (stop) return false;
    return respawn_shard(s);
  }

  bool respawn_shard(Shard& s) PARSDD_EXCLUDES(mu) {
    auto t0 = std::chrono::steady_clock::now();
    StatusOr<WorkerProcess> nw = spawn_checked();
    if (!nw.ok()) {
      MutexLock lock(mu);
      s.state = Shard::State::kStopped;
      return false;
    }
    // Replay every handle this shard owns: re-register its snapshot, then
    // re-apply its accumulated update log (the snapshot is the PRE-update
    // setup) so the recovered shard serves the updated graph.  Direct
    // request/response on the fresh socket is safe: the shard is still
    // kDown so nothing else writes to it, and this thread is the only
    // reader the socket has ever had.
    struct Owned {
      std::uint64_t id;
      std::string path;
      std::vector<EdgeDelta> update_log;
    };
    std::vector<Owned> owned;
    {
      MutexLock lock(mu);
      for (const auto& [id, hi] : handles) {
        if (hi.shard == s.index) {
          owned.push_back(Owned{id, hi.snapshot_path, hi.update_log});
        }
      }
    }
    struct Replayed {
      std::uint64_t id;
      RegisterAck ack;
      Status update_status;
    };
    std::vector<Replayed> acks;
    acks.reserve(owned.size());
    bool channel_ok = true;
    for (const Owned& o : owned) {
      serialize::Writer w;
      write_frame_header(w, MsgType::kRegisterSnapshot, o.id);
      write_string(w, o.path);
      if (!serialize::write_frame(nw->fd, w).ok()) {
        channel_ok = false;
        break;
      }
      StatusOr<std::vector<std::uint8_t>> frame =
          serialize::read_frame(nw->fd);
      if (!frame.ok()) {
        channel_ok = false;
        break;
      }
      serialize::Reader r(std::move(*frame));
      FrameHeader h = read_frame_header(r);
      RegisterAck ack = read_register_ack(r);
      if (!r.status().ok() || h.type != MsgType::kRegisterAck) {
        channel_ok = false;
        break;
      }
      Status upd = OkStatus();
      if (ack.status.ok() && !o.update_log.empty()) {
        // The whole log travels as one batch; the worker's update tiering
        // collapses it the same way incremental application would have.
        serialize::Writer uw;
        write_frame_header(uw, MsgType::kUpdate, o.id);
        uw.u64(ack.worker_handle);
        write_edge_deltas(uw, o.update_log);
        if (!serialize::write_frame(nw->fd, uw).ok()) {
          channel_ok = false;
          break;
        }
        StatusOr<std::vector<std::uint8_t>> uframe =
            serialize::read_frame(nw->fd);
        if (!uframe.ok()) {
          channel_ok = false;
          break;
        }
        serialize::Reader ur(std::move(*uframe));
        FrameHeader uh = read_frame_header(ur);
        WireUpdateAck uack = read_update_ack(ur);
        if (!ur.status().ok() || uh.type != MsgType::kUpdateAck) {
          channel_ok = false;
          break;
        }
        upd = uack.status;
      }
      acks.push_back(Replayed{o.id, std::move(ack), std::move(upd)});
    }
    if (!channel_ok) {
      // The replacement died during recovery.  Treat like a failed spawn;
      // a once-per-fault recovery does not chase a crash-looping binary.
      destroy_worker(*nw);
      MutexLock lock(mu);
      s.state = Shard::State::kStopped;
      return false;
    }
    double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    MutexLock lock(mu);
    if (stopping) {
      lock.Unlock();
      destroy_worker(*nw);
      lock.Lock();
      s.state = Shard::State::kStopped;
      return false;
    }
    for (const Replayed& rp : acks) {
      auto it = handles.find(rp.id);
      if (it == handles.end()) continue;  // unregistered during recovery
      if (rp.ack.status.ok() && rp.update_status.ok()) {
        it->second.worker_handle = rp.ack.worker_handle;
        it->second.lost = false;
      } else if (!rp.ack.status.ok()) {
        // Snapshot vanished or went bad underneath us: the handle stays
        // addressable but answers Unavailable with the reason.
        it->second.lost = true;
        it->second.lost_why = rp.ack.status.message();
      } else {
        // The snapshot reloaded but its update log no longer applies —
        // serving the stale pre-update setup would be silent corruption.
        it->second.lost = true;
        it->second.lost_why =
            "update-log replay failed: " + rp.update_status.message();
      }
    }
    s.proc = *nw;
    s.state = Shard::State::kUp;
    ++respawns;
    last_recovery_ms = elapsed_ms;
    return true;
  }
};

Coordinator::Coordinator() : impl_(new Impl) {}

StatusOr<std::unique_ptr<Coordinator>> Coordinator::Start(
    const CoordinatorOptions& opts) {
  std::unique_ptr<Coordinator> c(new Coordinator());
  Impl& im = *c->impl_;
  im.opts = opts;
  if (im.opts.worker_binary.empty()) {
    const char* env = std::getenv("PARSDD_WORKER_BIN");
    if (env != nullptr) im.opts.worker_binary = env;
  }
  if (im.opts.worker_binary.empty()) {
    return InvalidArgumentError(
        "dist: no worker binary (set CoordinatorOptions::worker_binary or "
        "PARSDD_WORKER_BIN)");
  }
  if (im.opts.workers == 0) {
    return InvalidArgumentError("dist: need at least one worker");
  }
  im.shards.reserve(im.opts.workers);
  for (std::uint32_t i = 0; i < im.opts.workers; ++i) {
    auto shard = std::make_unique<Impl::Shard>();
    shard->index = i;
    im.shards.push_back(std::move(shard));
  }
  // Spawn everything before starting any receiver: on failure the spawned
  // workers are torn down and a clean error returns — no half-started
  // coordinator escapes.
  for (auto& shard : im.shards) {
    StatusOr<WorkerProcess> w = im.spawn_checked();
    if (!w.ok()) {
      for (auto& spawned : im.shards) destroy_worker(spawned->proc);
      return w.status();
    }
    shard->proc = *w;
    shard->state = Impl::Shard::State::kUp;
  }
  for (auto& shard : im.shards) {
    Impl::Shard* sh = shard.get();
    Impl* pim = c->impl_.get();
    sh->receiver = std::thread([pim, sh] { pim->receiver_loop(*sh); });
  }
  return c;
}

Coordinator::~Coordinator() {
  Impl& im = *impl_;
  {
    MutexLock lock(im.mu);
    im.stopping = true;
    for (auto& shard : im.shards) {
      if (shard->state != Impl::Shard::State::kUp) continue;
      // Ask for a drain-and-exit: the worker answers everything it
      // accepted, then closes the stream; the receiver resolves those
      // answers and exits on the EOF.  A wedged or already-dead worker
      // surfaces as the same EOF (destroy_worker below is the SIGKILL
      // backstop), so this loop cannot hang.
      serialize::Writer w;
      write_frame_header(w, MsgType::kShutdown, 0);
      (void)serialize::write_frame(shard->proc.fd, w);
    }
  }
  for (auto& shard : im.shards) {
    if (shard->receiver.joinable()) shard->receiver.join();
  }
  for (auto& shard : im.shards) destroy_worker(shard->proc);
}

StatusOr<SetupHandle> Coordinator::register_laplacian(
    std::uint32_t n, const EdgeList& edges, const SddSolverOptions& opts) {
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n) {
      return InvalidArgumentError(
          "dist: register_laplacian: edge endpoint out of range");
    }
  }
  if (impl_->opts.snapshot_dir.empty()) {
    return InvalidArgumentError(
        "dist: register_laplacian needs CoordinatorOptions::snapshot_dir "
        "(snapshots back shard placement and crash recovery)");
  }
  return impl_->save_and_register(SolverSetup::for_laplacian(n, edges, opts));
}

StatusOr<SetupHandle> Coordinator::register_sdd(const CsrMatrix& a,
                                                const SddSolverOptions& opts) {
  if (impl_->opts.snapshot_dir.empty()) {
    return InvalidArgumentError(
        "dist: register_sdd needs CoordinatorOptions::snapshot_dir "
        "(snapshots back shard placement and crash recovery)");
  }
  return impl_->save_and_register(SolverSetup::for_sdd(a, opts));
}

StatusOr<SetupHandle> Coordinator::register_from_snapshot(
    const std::string& path) {
  return impl_->register_snapshot_path(path);
}

Status Coordinator::unregister(SetupHandle handle) {
  Impl& im = *impl_;
  MutexLock lock(im.mu);
  auto it = im.handles.find(handle.id);
  if (it == im.handles.end()) {
    return NotFoundError("dist: unknown handle " + std::to_string(handle.id));
  }
  Impl::HandleInfo hi = std::move(it->second);
  im.handles.erase(it);
  im.by_digest.erase(hi.digest);
  Impl::Shard& s = *im.shards[hi.shard];
  if (s.state == Impl::Shard::State::kUp && !hi.lost) {
    serialize::Writer w;
    write_frame_header(w, MsgType::kUnregister, 0);
    w.u64(hi.worker_handle);
    // One-way; a death here is the receiver's to handle.
    (void)serialize::write_frame(s.proc.fd, w);
  }
  return OkStatus();
}

StatusOr<SetupInfo> Coordinator::info(SetupHandle handle) const {
  Impl& im = *impl_;
  MutexLock lock(im.mu);
  auto it = im.handles.find(handle.id);
  if (it == im.handles.end()) {
    return NotFoundError("dist: unknown handle " + std::to_string(handle.id));
  }
  return it->second.info;
}

std::future<StatusOr<SolveResult>> Coordinator::submit(
    SetupHandle handle, Vec b, std::optional<Precision> require) {
  Impl& im = *impl_;
  SinglePromise p;
  std::future<StatusOr<SolveResult>> fut = p.get_future();
  Status err;
  {
    MutexLock lock(im.mu);
    Impl::Shard* s = nullptr;
    std::uint64_t worker_handle = 0;
    err = im.route(handle.id, b.size(), &s, &worker_handle);
    if (err.ok()) {
      std::uint64_t req = im.next_req++;
      serialize::Writer w;
      write_frame_header(w, MsgType::kSubmit, req);
      w.u64(worker_handle);
      w.u8(encode_required_precision(require));
      write_vec(w, b);
      err = serialize::write_frame(s->proc.fd, w);
      if (err.ok()) {
        s->pending.emplace(req, std::move(p));
        ++im.total_pending;
        ++im.submitted;
      }
    }
  }
  if (!err.ok()) p.set_value(StatusOr<SolveResult>(std::move(err)));
  return fut;
}

std::future<StatusOr<BatchSolveResult>> Coordinator::submit_batch(
    SetupHandle handle, MultiVec b, std::optional<Precision> require) {
  Impl& im = *impl_;
  BatchPromise p;
  std::future<StatusOr<BatchSolveResult>> fut = p.get_future();
  Status err;
  if (b.cols() == 0) {
    err = InvalidArgumentError("dist: submit_batch with zero columns");
  } else {
    MutexLock lock(im.mu);
    Impl::Shard* s = nullptr;
    std::uint64_t worker_handle = 0;
    err = im.route(handle.id, b.rows(), &s, &worker_handle);
    if (err.ok()) {
      std::uint64_t req = im.next_req++;
      serialize::Writer w;
      write_frame_header(w, MsgType::kSubmitBatch, req);
      w.u64(worker_handle);
      w.u8(encode_required_precision(require));
      write_multivec(w, b);
      err = serialize::write_frame(s->proc.fd, w);
      if (err.ok()) {
        s->pending.emplace(req, std::move(p));
        ++im.total_pending;
        ++im.submitted;
      }
    }
  }
  if (!err.ok()) p.set_value(StatusOr<BatchSolveResult>(std::move(err)));
  return fut;
}

StatusOr<UpdateAck> Coordinator::update(SetupHandle handle,
                                        const std::vector<EdgeDelta>& deltas) {
  Impl& im = *impl_;
  UpdatePromise p;
  std::future<WireUpdateAck> fut = p.get_future();
  {
    MutexLock lock(im.mu);
    if (im.stopping) {
      return UnavailableError("dist: coordinator is shutting down");
    }
    auto it = im.handles.find(handle.id);
    if (it == im.handles.end()) {
      return NotFoundError("dist: unknown handle " +
                           std::to_string(handle.id));
    }
    const Impl::HandleInfo& hi = it->second;
    if (hi.lost) {
      return UnavailableError("dist: setup for handle " +
                              std::to_string(handle.id) +
                              " was lost in recovery: " + hi.lost_why);
    }
    Impl::Shard& s = *im.shards[hi.shard];
    if (s.state != Impl::Shard::State::kUp) {
      return UnavailableError("dist: worker " + std::to_string(hi.shard) +
                              " is down; retry");
    }
    std::uint64_t req = im.next_req++;
    serialize::Writer w;
    write_frame_header(w, MsgType::kUpdate, req);
    w.u64(hi.worker_handle);
    write_edge_deltas(w, deltas);
    Status sent = serialize::write_frame(s.proc.fd, w);
    if (!sent.ok()) {
      return UnavailableError("dist: worker " + std::to_string(hi.shard) +
                              " hung up: " + sent.message());
    }
    s.pending.emplace(req, std::move(p));
    ++im.total_pending;
    ++im.submitted;
  }
  WireUpdateAck ack = fut.get();
  if (!ack.status.ok()) return ack.status;
  // Acknowledged: extend the handle's update log so every future
  // reconstruction from the (pre-update) snapshot replays this batch.
  MutexLock lock(im.mu);
  auto it = im.handles.find(handle.id);
  if (it != im.handles.end()) {
    it->second.update_log.insert(it->second.update_log.end(), deltas.begin(),
                                 deltas.end());
    it->second.info.update_seq += deltas.size();
  }
  return ack.ack;
}

void Coordinator::drain() {
  Impl& im = *impl_;
  MutexLock lock(im.mu);
  while (im.total_pending != 0) im.cv_idle.wait(lock);
}

DistStats Coordinator::stats() const {
  Impl& im = *impl_;
  MutexLock lock(im.mu);
  DistStats out;
  out.submitted = im.submitted;
  out.rejected = im.rejected;
  out.completed = im.completed;
  out.worker_deaths = im.worker_deaths;
  out.respawns = im.respawns;
  out.last_recovery_ms = im.last_recovery_ms;
  out.in_flight = im.total_pending;
  out.workers.resize(im.shards.size());
  for (std::size_t i = 0; i < im.shards.size(); ++i) {
    const Impl::Shard& s = *im.shards[i];
    out.workers[i].up = s.state == Impl::Shard::State::kUp;
    out.workers[i].deaths = s.deaths;
    out.workers[i].in_flight = s.pending.size();
  }
  for (const auto& [id, hi] : im.handles) {
    ++out.workers[hi.shard].handles;
    if (hi.lost) out.lost_handles.emplace_back(id, hi.lost_why);
  }
  return out;
}

StatusOr<ServiceStats> Coordinator::worker_stats(std::uint32_t worker) {
  Impl& im = *impl_;
  StatsPromise p;
  std::future<StatusOr<ServiceStats>> fut = p.get_future();
  {
    MutexLock lock(im.mu);
    if (im.stopping) {
      return UnavailableError("dist: coordinator is shutting down");
    }
    if (worker >= im.shards.size()) {
      return InvalidArgumentError("dist: no worker " + std::to_string(worker));
    }
    Impl::Shard& s = *im.shards[worker];
    if (s.state != Impl::Shard::State::kUp) {
      return UnavailableError("dist: worker " + std::to_string(worker) +
                              " is down");
    }
    std::uint64_t req = im.next_req++;
    serialize::Writer w;
    write_frame_header(w, MsgType::kStats, req);
    Status sent = serialize::write_frame(s.proc.fd, w);
    if (!sent.ok()) {
      return UnavailableError("dist: worker " + std::to_string(worker) +
                              " hung up: " + sent.message());
    }
    s.pending.emplace(req, std::move(p));
    ++im.total_pending;
    ++im.submitted;
  }
  return fut.get();
}

std::uint32_t Coordinator::num_workers() const {
  return static_cast<std::uint32_t>(impl_->shards.size());
}

StatusOr<std::uint32_t> Coordinator::worker_of(SetupHandle handle) const {
  Impl& im = *impl_;
  MutexLock lock(im.mu);
  auto it = im.handles.find(handle.id);
  if (it == im.handles.end()) {
    return NotFoundError("dist: unknown handle " + std::to_string(handle.id));
  }
  return it->second.shard;
}

Status Coordinator::rebalance(SetupHandle handle, std::uint32_t worker) {
  Impl& im = *impl_;
  if (worker >= im.shards.size()) {
    return InvalidArgumentError("dist: no worker " + std::to_string(worker));
  }
  RegisterPromise p;
  std::future<RegisterAck> fut = p.get_future();
  std::vector<EdgeDelta> log;
  {
    MutexLock lock(im.mu);
    if (im.stopping) {
      return UnavailableError("dist: coordinator is shutting down");
    }
    auto it = im.handles.find(handle.id);
    if (it == im.handles.end()) {
      return NotFoundError("dist: unknown handle " +
                           std::to_string(handle.id));
    }
    if (it->second.lost) {
      return UnavailableError("dist: setup for handle " +
                              std::to_string(handle.id) +
                              " was lost in recovery; cannot migrate it");
    }
    if (it->second.shard == worker) return OkStatus();
    log = it->second.update_log;
    Impl::Shard& target = *im.shards[worker];
    if (target.state != Impl::Shard::State::kUp) {
      return UnavailableError("dist: target worker " +
                              std::to_string(worker) + " is down");
    }
    std::uint64_t req = im.next_req++;
    serialize::Writer w;
    write_frame_header(w, MsgType::kRegisterSnapshot, req);
    write_string(w, it->second.snapshot_path);
    Status sent = serialize::write_frame(target.proc.fd, w);
    if (!sent.ok()) {
      return UnavailableError("dist: target worker " +
                              std::to_string(worker) +
                              " hung up: " + sent.message());
    }
    target.pending.emplace(req, std::move(p));
    ++im.total_pending;
    ++im.submitted;
  }
  RegisterAck ack = fut.get();
  if (!ack.status.ok()) return ack.status;  // placement untouched
  auto abandon_target = [&]() PARSDD_REQUIRES(im.mu) {
    Impl::Shard& target = *im.shards[worker];
    if (target.state == Impl::Shard::State::kUp) {
      serialize::Writer w;
      write_frame_header(w, MsgType::kUnregister, 0);
      w.u64(ack.worker_handle);
      (void)serialize::write_frame(target.proc.fd, w);
    }
  };
  // The target loaded the pre-update snapshot; replay the update log it
  // accumulated before handing traffic over.
  if (!log.empty()) {
    UpdatePromise up;
    std::future<WireUpdateAck> ufut = up.get_future();
    Status err;
    {
      MutexLock lock(im.mu);
      Impl::Shard& target = *im.shards[worker];
      if (im.stopping || target.state != Impl::Shard::State::kUp) {
        err = UnavailableError("dist: target worker " +
                               std::to_string(worker) +
                               " went down during rebalance");
      } else {
        std::uint64_t req = im.next_req++;
        serialize::Writer w;
        write_frame_header(w, MsgType::kUpdate, req);
        w.u64(ack.worker_handle);
        write_edge_deltas(w, log);
        err = serialize::write_frame(target.proc.fd, w);
        if (err.ok()) {
          target.pending.emplace(req, std::move(up));
          ++im.total_pending;
          ++im.submitted;
        }
      }
    }
    if (err.ok()) err = ufut.get().status;
    if (!err.ok()) {
      MutexLock lock(im.mu);
      abandon_target();
      return err;  // placement untouched
    }
  }
  MutexLock lock(im.mu);
  auto it = im.handles.find(handle.id);
  if (it == im.handles.end()) {
    abandon_target();
    return NotFoundError("dist: handle " + std::to_string(handle.id) +
                         " was unregistered during rebalance");
  }
  if (it->second.shard == worker) {
    // Raced another rebalance to the same destination; keep theirs.
    abandon_target();
    return OkStatus();
  }
  if (it->second.update_log.size() != log.size()) {
    // An update() landed on the source while the target was warming up;
    // the copy we shipped is stale.  Caller retries.
    abandon_target();
    return UnavailableError("dist: handle " + std::to_string(handle.id) +
                            " absorbed updates during rebalance; retry");
  }
  std::uint32_t old_shard = it->second.shard;
  std::uint64_t old_worker_handle = it->second.worker_handle;
  it->second.shard = worker;
  it->second.worker_handle = ack.worker_handle;
  it->second.lost = false;
  Impl::Shard& old_s = *im.shards[old_shard];
  if (old_s.state == Impl::Shard::State::kUp) {
    serialize::Writer w;
    write_frame_header(w, MsgType::kUnregister, 0);
    w.u64(old_worker_handle);
    (void)serialize::write_frame(old_s.proc.fd, w);
  }
  return OkStatus();
}

Status Coordinator::kill_worker(std::uint32_t worker) {
  Impl& im = *impl_;
  MutexLock lock(im.mu);
  if (worker >= im.shards.size()) {
    return InvalidArgumentError("dist: no worker " + std::to_string(worker));
  }
  Impl::Shard& s = *im.shards[worker];
  if (s.state != Impl::Shard::State::kUp) {
    return UnavailableError("dist: worker " + std::to_string(worker) +
                            " is already down");
  }
  // Under the lock the receiver cannot have detached s.proc yet (it does so
  // only after taking mu), so the pid is live and cannot have been recycled.
  return signal_worker(s.proc, SIGKILL);
}

}  // namespace parsdd::dist
