// Process supervision for the sharded service: spawn, signal, and reap
// parsdd_worker processes (DESIGN.md §8).
//
// Spawning uses a socketpair + fork/exec rather than a listening socket at
// a filesystem path: the worker inherits its end of the pair across exec
// (passed as `--fd N`), so there is no path to collide on, no unlink race,
// and no connect/accept handshake to time out — the kernel guarantees the
// stream exists before the child runs.  The pair IS a Unix-domain stream
// socket, so the wire protocol and its framing are unchanged from what a
// path-based listener would carry.
//
// Death detection is split by role: the coordinator's per-worker receiver
// observes the *stream* dying (EOF / ECONNRESET on read — immediate, no
// polling), and this module then confirms and reaps the *process* with
// waitpid.  kill() is exposed for fault injection: the worker-kill tests
// and bench_dist's recovery measurement SIGKILL a live worker and assert
// the coordinator's recovery path.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

#include "util/status.h"

namespace parsdd::dist {

struct WorkerProcess {
  pid_t pid = -1;
  /// Coordinator-side end of the socketpair; owned by the coordinator,
  /// closed by destroy_worker().
  int fd = -1;
  bool valid() const { return pid > 0 && fd >= 0; }
};

/// fork/execs `binary --fd N <extra_args...>` with the worker end of a
/// fresh socketpair.  Internal errors (socketpair/fork failure) and a
/// NotFound for a binary that could not be executed (the child exits 127;
/// detected on first read, not here — exec failure after fork cannot be
/// reported synchronously without extra plumbing).
StatusOr<WorkerProcess> spawn_worker(const std::string& binary,
                                     const std::vector<std::string>& args);

/// Sends a signal to the worker process (fault injection uses SIGKILL).
Status signal_worker(const WorkerProcess& w, int sig);

/// Closes the socket and reaps the process: SIGKILL if still alive, then a
/// blocking waitpid.  Safe on an already-dead or already-destroyed worker.
void destroy_worker(WorkerProcess& w);

/// Non-blocking reap after the stream died; returns true once the process
/// has actually exited (and fills *exit_code when it exited normally).
bool try_reap(WorkerProcess& w, int* exit_code);

}  // namespace parsdd::dist
