#include "dist/worker.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "dist/wire.h"
#include "parallel/task_queue.h"
#include "util/serialize.h"
#include "util/thread_annotations.h"

namespace parsdd::dist {

namespace {

// Serializes frame writes from the read loop and the responder pool; the
// socket is a byte stream, so two interleaved frames would desynchronize
// the coordinator permanently.
class FrameSink {
 public:
  explicit FrameSink(int fd) : fd_(fd) {}

  void send(const serialize::Writer& w) PARSDD_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    // A failed send means the coordinator is gone; the read loop will see
    // the same condition and wind the process down, so errors are dropped
    // here rather than retried.
    (void)serialize::write_frame(fd_, w);
  }

 private:
  Mutex mu_;
  int fd_;
};

void ack_register(FrameSink& sink, std::uint64_t req_id,
                  const RegisterAck& ack) {
  serialize::Writer w;
  write_frame_header(w, MsgType::kRegisterAck, req_id);
  write_register_ack(w, ack);
  sink.send(w);
}

void handle_register(SolverService& service, FrameSink& sink,
                     std::uint64_t req_id, serialize::Reader& r) {
  std::string path = read_string(r);
  if (!r.status().ok()) {
    ack_register(sink, req_id, RegisterAck{r.status(), 0, {}});
    return;
  }
  RegisterAck ack;
  StatusOr<SetupHandle> handle = service.register_from_snapshot(path);
  if (!handle.ok()) {
    ack.status = handle.status();
  } else {
    ack.worker_handle = handle->id;
    ack.info = service.info(*handle).value();
  }
  ack_register(sink, req_id, ack);
}

// Decodes the wire-v2 required-precision byte (0 = any, 1 = f64-bitwise,
// 2 = f32-refined); latches a Reader failure for anything else.
std::optional<Precision> read_required_precision(serialize::Reader& r) {
  std::uint8_t code = r.u8();
  switch (code) {
    case 0:
      return std::nullopt;
    case 1:
      return Precision::kF64Bitwise;
    case 2:
      return Precision::kF32Refined;
    default:
      r.fail("submit: unknown required-precision code " +
             std::to_string(code));
      return std::nullopt;
  }
}

void handle_submit(SolverService& service, FrameSink& sink,
                   TaskQueue& responders, std::uint64_t req_id,
                   serialize::Reader& r) {
  std::uint64_t handle = r.u64();
  std::optional<Precision> require = read_required_precision(r);
  Vec b = read_vec(r);
  if (!r.status().ok()) {
    serialize::Writer w;
    write_frame_header(w, MsgType::kSubmitAck, req_id);
    write_status(w, r.status());
    sink.send(w);
    return;
  }
  // Submit immediately (the dispatcher's linger window must see every
  // concurrently shipped request), then hand the future to a responder.
  // shared_ptr because TaskQueue tasks are copyable std::functions.
  auto fut = std::make_shared<std::future<StatusOr<SolveResult>>>(
      service.submit(SetupHandle{handle}, std::move(b), require));
  bool posted = responders.post([&sink, req_id, fut] {
    StatusOr<SolveResult> res = fut->get();
    serialize::Writer w;
    write_frame_header(w, MsgType::kSubmitAck, req_id);
    write_status(w, res.status());
    if (res.ok()) {
      write_vec(w, res->x);
      write_iter_stats(w, res->stats);
      w.u32(res->coalesced_cols);
    }
    sink.send(w);
  });
  if (!posted) {
    serialize::Writer w;
    write_frame_header(w, MsgType::kSubmitAck, req_id);
    write_status(w, UnavailableError("worker: shutting down"));
    sink.send(w);
  }
}

void handle_submit_batch(SolverService& service, FrameSink& sink,
                         TaskQueue& responders, std::uint64_t req_id,
                         serialize::Reader& r) {
  std::uint64_t handle = r.u64();
  std::optional<Precision> require = read_required_precision(r);
  MultiVec b = read_multivec(r);
  if (!r.status().ok()) {
    serialize::Writer w;
    write_frame_header(w, MsgType::kSubmitBatchAck, req_id);
    write_status(w, r.status());
    sink.send(w);
    return;
  }
  auto fut = std::make_shared<std::future<StatusOr<BatchSolveResult>>>(
      service.submit_batch(SetupHandle{handle}, std::move(b), require));
  bool posted = responders.post([&sink, req_id, fut] {
    StatusOr<BatchSolveResult> res = fut->get();
    serialize::Writer w;
    write_frame_header(w, MsgType::kSubmitBatchAck, req_id);
    write_status(w, res.status());
    if (res.ok()) {
      write_multivec(w, res->x);
      w.varint(res->report.column_stats.size());
      for (const IterStats& s : res->report.column_stats) {
        write_iter_stats(w, s);
      }
    }
    sink.send(w);
  });
  if (!posted) {
    serialize::Writer w;
    write_frame_header(w, MsgType::kSubmitBatchAck, req_id);
    write_status(w, UnavailableError("worker: shutting down"));
    sink.send(w);
  }
}

void handle_update(SolverService& service, FrameSink& sink,
                   std::uint64_t req_id, serialize::Reader& r) {
  std::uint64_t handle = r.u64();
  std::vector<EdgeDelta> deltas = read_edge_deltas(r);
  WireUpdateAck ack;
  if (!r.status().ok()) {
    ack.status = r.status();
  } else {
    // update() is synchronous from the worker's point of view (a structural
    // batch returns as soon as the rebuild is scheduled), so it answers
    // inline rather than through the responder pool.
    StatusOr<UpdateAck> res = service.update(SetupHandle{handle}, deltas);
    if (res.ok()) {
      ack.ack = *res;
    } else {
      ack.status = res.status();
    }
  }
  serialize::Writer w;
  write_frame_header(w, MsgType::kUpdateAck, req_id);
  write_update_ack(w, ack);
  sink.send(w);
}

}  // namespace

int run_worker(const WorkerOptions& opts) {
  if (opts.fd < 0) return 2;
  SolverService service(opts.service);
  FrameSink sink(opts.fd);
  {
    serialize::Writer hello;
    write_hello(hello);
    sink.send(hello);
  }
  // Scoped so the responders drain (flushing every answered frame) before
  // the service is destroyed.
  {
    TaskQueue responders(std::max<std::uint32_t>(opts.responders, 1));
    for (;;) {
      StatusOr<std::vector<std::uint8_t>> frame =
          serialize::read_frame(opts.fd);
      if (!frame.ok()) break;  // coordinator gone: drain and exit
      serialize::Reader r(std::move(*frame));
      FrameHeader h = read_frame_header(r);
      if (!r.status().ok()) break;  // desynchronized stream: bail out
      switch (h.type) {
        case MsgType::kRegisterSnapshot:
          handle_register(service, sink, h.req_id, r);
          break;
        case MsgType::kUnregister:
          (void)service.unregister(SetupHandle{r.u64()});  // one-way
          break;
        case MsgType::kSubmit:
          handle_submit(service, sink, responders, h.req_id, r);
          break;
        case MsgType::kSubmitBatch:
          handle_submit_batch(service, sink, responders, h.req_id, r);
          break;
        case MsgType::kStats: {
          serialize::Writer w;
          write_frame_header(w, MsgType::kStatsAck, h.req_id);
          write_service_stats(w, service.stats());
          sink.send(w);
          break;
        }
        case MsgType::kUpdate:
          handle_update(service, sink, h.req_id, r);
          break;
        case MsgType::kShutdown:
          return 0;  // responders + service drain via destructors
        case MsgType::kHello:
        case MsgType::kRegisterAck:
        case MsgType::kSubmitAck:
        case MsgType::kSubmitBatchAck:
        case MsgType::kStatsAck:
        case MsgType::kUpdateAck:
          break;  // coordinator-bound types: ignore, keep serving
      }
    }
  }
  return 0;
}

}  // namespace parsdd::dist
