#include "dist/process_supervisor.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

namespace parsdd::dist {

StatusOr<WorkerProcess> spawn_worker(const std::string& binary,
                                     const std::vector<std::string>& args) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return InternalError("dist: socketpair failed");
  }
  // argv assembled before fork: only async-signal-safe calls are legal in
  // the child of a multithreaded process.
  std::vector<std::string> strings;
  strings.push_back(binary);
  strings.push_back("--fd");
  strings.push_back(std::to_string(sv[1]));
  for (const std::string& a : args) strings.push_back(a);
  std::vector<char*> argv;
  argv.reserve(strings.size() + 1);
  for (std::string& s : strings) argv.push_back(s.data());
  argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return InternalError("dist: fork failed");
  }
  if (pid == 0) {
    ::close(sv[0]);
    ::execv(binary.c_str(), argv.data());
    _exit(127);  // exec failed; the parent sees EOF on first read
  }
  ::close(sv[1]);
  WorkerProcess w;
  w.pid = pid;
  w.fd = sv[0];
  return w;
}

Status signal_worker(const WorkerProcess& w, int sig) {
  if (!w.valid()) {
    return InvalidArgumentError("dist: signal on an invalid worker");
  }
  if (::kill(w.pid, sig) != 0) {
    return NotFoundError("dist: worker pid " + std::to_string(w.pid) +
                         " is gone");
  }
  return OkStatus();
}

void destroy_worker(WorkerProcess& w) {
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
  if (w.pid > 0) {
    // The worker exits on its own when the socket closes; the SIGKILL is
    // belt-and-braces so a wedged child can never block the reap below.
    ::kill(w.pid, SIGKILL);
    int st = 0;
    while (::waitpid(w.pid, &st, 0) < 0 && errno == EINTR) {
    }
    w.pid = -1;
  }
}

bool try_reap(WorkerProcess& w, int* exit_code) {
  if (w.pid <= 0) return true;
  int st = 0;
  pid_t r = ::waitpid(w.pid, &st, WNOHANG);
  if (r == 0) return false;  // still exiting
  if (r == w.pid && exit_code != nullptr && WIFEXITED(st)) {
    *exit_code = WEXITSTATUS(st);
  }
  w.pid = -1;
  return true;
}

}  // namespace parsdd::dist
