// parsdd_worker: the worker-process binary of the sharded service.
//
// Spawned by the coordinator's process supervisor (dist/process_supervisor.h)
// with the worker end of a socketpair passed as `--fd N`; everything else it
// needs arrives over the wire protocol.  Not intended for manual use, but
// harmless if run by hand: with no valid fd it prints usage and exits 2.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dist/worker.h"

namespace {

bool parse_u32(const char* s, std::uint32_t* out) {
  char* end = nullptr;
  unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0' || v > 0xfffffffful) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  parsdd::dist::WorkerOptions opts;
  std::uint32_t fd = 0, max_pending = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* val = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--fd") == 0 && val && parse_u32(val, &fd)) {
      opts.fd = static_cast<int>(fd);
      ++i;
    } else if (std::strcmp(arg, "--threads") == 0 && val &&
               parse_u32(val, &opts.service.workers)) {
      ++i;
    } else if (std::strcmp(arg, "--max-batch") == 0 && val &&
               parse_u32(val, &opts.service.max_batch)) {
      ++i;
    } else if (std::strcmp(arg, "--linger-us") == 0 && val &&
               parse_u32(val, &opts.service.max_linger_us)) {
      ++i;
    } else if (std::strcmp(arg, "--max-pending") == 0 && val &&
               parse_u32(val, &max_pending)) {
      opts.service.max_pending = max_pending;
      ++i;
    } else if (std::strcmp(arg, "--responders") == 0 && val &&
               parse_u32(val, &opts.responders)) {
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: parsdd_worker --fd N [--threads T] [--max-batch K]"
                   " [--linger-us U] [--max-pending P] [--responders R]\n"
                   "(spawned by the dist coordinator; see DESIGN.md §8)\n");
      return 2;
    }
  }
  if (opts.fd < 0) {
    std::fprintf(stderr, "parsdd_worker: --fd is required\n");
    return 2;
  }
  return parsdd::dist::run_worker(opts);
}
