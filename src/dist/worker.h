// Worker side of the sharded multi-process service (DESIGN.md §8).
//
// A worker process is deliberately thin: it hosts one in-process
// SolverService — the same dispatcher, micro-batching, and backpressure
// the single-process deployment runs — and relays wire frames to and from
// it.  The read loop registers snapshots and submits right-hand sides the
// moment they arrive (so the service's linger window sees the full
// concurrent burst and coalesces exactly as it would in-process), while a
// small responder pool blocks on the returned futures and writes each
// answer frame as its solve completes, out of order when solves finish out
// of order.
//
// Lifecycle: the worker exits when it receives kShutdown (drains its
// service, answers everything accepted, exits 0) or when the coordinator's
// end of the socket closes (coordinator crash: drain and exit 0 as well —
// an orphaned worker must never linger).  It never respawns itself; the
// coordinator's supervisor owns the process lifecycle.
#pragma once

#include "service/solver_service.h"

namespace parsdd::dist {

struct WorkerOptions {
  /// Stream-socket file descriptor to the coordinator (socketpair end the
  /// supervisor passed across exec as `--fd N`).
  int fd = -1;
  /// Forwarded to the embedded SolverService.
  ServiceOptions service;
  /// Threads relaying resolved futures back to the socket; bounds how many
  /// completed answers can be serialized concurrently, not how many solves
  /// run (the service's own executors do that).
  std::uint32_t responders = 4;
};

/// Runs the worker protocol loop until shutdown or peer disconnect.
/// Returns the process exit code (0 on a clean drain).
int run_worker(const WorkerOptions& opts);

}  // namespace parsdd::dist
